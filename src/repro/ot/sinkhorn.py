"""Log-domain Sinkhorn iterations for entropic optimal transport.

Implements the solver behind Definition 3 of the paper: the masking
regularised optimal transport metric

    OT_λ(ν, μ) = min_P <P, C> + λ Σ_ij p_ij log p_ij

over the transport polytope with uniform marginals.  The log-domain update
is numerically stable for the small regularisation weights probed by the
ablation benches, and the returned plan is exact to ``tol`` in marginal
violation.

Solver knobs live in :class:`SinkhornConfig`, shared verbatim by the
batched solver (:func:`repro.ot.sinkhorn_batched`) so the loop and stacked
paths cannot drift apart in configuration.  The old positional
``sinkhorn(cost, reg, ...)`` form still works for one release behind a
``DeprecationWarning``.

Every dual sweep runs through :func:`repro.tensor.ops.logsumexp`, so the
op profiler times the solver's inner kernel and the active tensor backend
(:mod:`repro.tensor.backend`) dispatches it.

The solver exposes its dual potentials so callers can warm-start: a DIM
training loop solves a near-identical problem for the same batch every
epoch, and reusing the previous epoch's ``(f, g)`` as the initial point
cuts the iteration count by an order of magnitude once training settles
(the same trick Muzellec et al. use for OT imputation).  Warm starts are
a pure acceleration — the fixed point, and therefore the returned plan,
is still converged to ``tol``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..obs import get_recorder
from ..tensor import ops

__all__ = [
    "SinkhornConfig",
    "SinkhornResult",
    "sinkhorn",
    "regularized_ot_value",
    "entropy",
]


@dataclass(frozen=True, kw_only=True)
class SinkhornConfig:
    """Solver configuration shared by ``sinkhorn`` and ``sinkhorn_batched``.

    Keyword-only by design: the old grown positional knob list is exactly
    what this dataclass replaces.

    Attributes
    ----------
    reg:
        Entropic regularisation weight ``λ > 0``.
    max_iter:
        Maximum number of dual sweeps.
    tol:
        L1 marginal-violation tolerance for convergence.
    """

    reg: float
    max_iter: int = 500
    tol: float = 1e-9

    def __post_init__(self) -> None:
        if not (np.isfinite(self.reg) and self.reg > 0.0):
            raise ValueError(
                f"entropic regulariser must be positive, got {self.reg}"
            )
        if self.max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {self.max_iter}")
        if not (np.isfinite(self.tol) and self.tol > 0.0):
            raise ValueError(f"tol must be positive, got {self.tol}")


_LEGACY_KNOBS = ("reg", "max_iter", "tol")


def _coerce_config(config, legacy: dict, caller: str) -> SinkhornConfig:
    """Resolve the ``config`` argument plus any legacy knob kwargs.

    New form: ``caller(..., config=SinkhornConfig(reg=...))``.
    Old form: ``caller(..., reg, max_iter=..., tol=...)`` — accepted for one
    release with a :class:`DeprecationWarning` (``config`` receives the old
    positional ``reg`` when callers passed it positionally).
    """
    if isinstance(config, SinkhornConfig):
        if legacy:
            raise TypeError(
                f"{caller}() got both a SinkhornConfig and legacy solver "
                f"kwargs {sorted(legacy)}; move them into the config"
            )
        return config
    knobs = dict(legacy)
    if config is not None:
        if "reg" in knobs:
            raise TypeError(f"{caller}() got multiple values for 'reg'")
        knobs["reg"] = config
    unknown = set(knobs) - set(_LEGACY_KNOBS)
    if unknown:
        raise TypeError(
            f"{caller}() got unexpected keyword arguments {sorted(unknown)}"
        )
    if "reg" not in knobs:
        raise TypeError(
            f"{caller}() needs a SinkhornConfig, e.g. "
            f"{caller}(..., config=SinkhornConfig(reg=0.1))"
        )
    warnings.warn(
        f"passing reg/max_iter/tol to {caller}() directly is deprecated and "
        f"will be removed in the next release; pass "
        f"config=SinkhornConfig(reg=..., max_iter=..., tol=...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return SinkhornConfig(**knobs)


@dataclass(frozen=True)
class SinkhornResult:
    """Output of the Sinkhorn solver.

    Attributes
    ----------
    plan:
        Optimal transport plan ``P*`` (n, m).
    value:
        The regularised objective ``<P*, C> + λ Σ p log p`` (Definition 3).
    transport_cost:
        The linear part ``<P*, C>`` alone.
    iterations:
        Number of Sinkhorn sweeps performed.
    converged:
        Whether the marginal violation dropped below tolerance.
    marginal_violation:
        L1 marginal violation of the returned plan,
        ``Σ_i |Σ_j P_ij − a_i| + Σ_j |Σ_i P_ij − b_j|``.  On a converged
        run this is below ``tol``; on a non-converged run it tells a
        near-miss (violation barely above ``tol``) apart from genuine
        divergence — previously the result only said ``converged=False``.
    f, g:
        Final dual potentials (scaled by 1/λ), satisfying
        ``plan = exp(f[:, None] + g[None, :] - C/λ)``.  Feed them back as
        ``init=(f, g)`` to warm-start a subsequent solve of a nearby
        problem.
    """

    plan: np.ndarray
    value: float
    transport_cost: float
    iterations: int
    converged: bool
    marginal_violation: float
    f: np.ndarray
    g: np.ndarray


def entropy(plan: np.ndarray, eps: float = 1e-300) -> float:
    """Negative entropy ``Σ p log p`` with the ``0 log 0 = 0`` convention."""
    plan = np.asarray(plan)
    positive = plan[plan > eps]
    return float((positive * np.log(positive)).sum())


def regularized_ot_value(plan: np.ndarray, cost: np.ndarray, reg: float) -> float:
    """Evaluate Definition 3's objective at a given plan."""
    return float((plan * cost).sum()) + reg * entropy(plan)


def _validate_marginal(name: str, weights: np.ndarray, expected: int) -> np.ndarray:
    """A marginal must be a strictly positive, finite vector of the right size.

    Zero or negative entries would flow through ``np.log`` into ``-inf``/NaN
    potentials and could yield a NaN plan wrapped in a finite-looking
    :class:`SinkhornResult`, so they are rejected up front with the offending
    index named.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size != expected:
        raise ValueError(
            f"marginal {name!r} must be a 1-D vector of length {expected} "
            f"matching the cost matrix, got shape {weights.shape}"
        )
    valid = np.isfinite(weights) & (weights > 0.0)
    if not valid.all():
        index = int(np.argmin(valid))
        raise ValueError(
            f"marginal {name!r} must be strictly positive and finite "
            f"(the log-domain solver takes its log): {name}[{index}] = "
            f"{weights[index]}"
        )
    return weights


def _logsumexp(matrix: np.ndarray, axis: int) -> np.ndarray:
    """Backend-dispatched, profiler-visible logsumexp (the solver kernel)."""
    return ops.logsumexp(matrix, axis=axis).data


def sinkhorn(
    cost: np.ndarray,
    config: Optional[SinkhornConfig] = None,
    *,
    a: Optional[np.ndarray] = None,
    b: Optional[np.ndarray] = None,
    init: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    **legacy,
) -> SinkhornResult:
    """Solve entropic OT in the log domain.

    Parameters
    ----------
    cost:
        ``(n, m)`` cost matrix.
    config:
        :class:`SinkhornConfig` with the solver knobs (``reg``,
        ``max_iter``, ``tol``).  The pre-redesign form —
        ``sinkhorn(cost, reg, max_iter=..., tol=...)`` — is still accepted
        for one release and warns ``DeprecationWarning``.
    a, b:
        Marginals (default uniform).  Must be strictly positive and match
        the cost matrix's shape; degenerate marginals raise ``ValueError``.
    init:
        Optional ``(f, g)`` dual potentials (e.g. from a previous
        :class:`SinkhornResult` on a nearby problem) used as the starting
        point instead of zeros.  The solver still iterates to ``tol``, so
        a warm start changes the iteration count, not the answer.
    """
    cfg = _coerce_config(config, legacy, "sinkhorn")
    reg, max_iter, tol = cfg.reg, cfg.max_iter, cfg.tol
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2:
        raise ValueError(f"cost must be a 2-D matrix, got shape {cost.shape}")
    n, m = cost.shape
    if a is None:
        a = np.full(n, 1.0 / n)
    if b is None:
        b = np.full(m, 1.0 / m)
    a = _validate_marginal("a", a, n)
    b = _validate_marginal("b", b, m)
    log_a = np.log(a)
    log_b = np.log(b)

    # Dual potentials (scaled by 1/reg): plan = exp(f + g - C/reg).
    neg_cost = -cost / reg
    warm_started = init is not None
    if warm_started:
        f0, g0 = init
        f = np.asarray(f0, dtype=np.float64).copy()
        g = np.asarray(g0, dtype=np.float64).copy()
        if f.shape != (n,) or g.shape != (m,):
            raise ValueError(
                f"init duals must have shapes ({n},) and ({m},), got "
                f"{f.shape} and {g.shape}"
            )
    else:
        f = np.zeros(n)
        g = np.zeros(m)
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        f = log_a - _logsumexp(neg_cost + g[None, :], axis=1)
        g = log_b - _logsumexp(neg_cost + f[:, None], axis=0)
        plan = np.exp(neg_cost + f[:, None] + g[None, :])
        violation = np.abs(plan.sum(axis=1) - a).sum() + np.abs(plan.sum(axis=0) - b).sum()
        if violation < tol:
            converged = True
            break
    plan = np.exp(neg_cost + f[:, None] + g[None, :])
    value = regularized_ot_value(plan, cost, reg)
    violation = float(
        np.abs(plan.sum(axis=1) - a).sum() + np.abs(plan.sum(axis=0) - b).sum()
    )
    recorder = get_recorder()
    if recorder.enabled:
        recorder.inc("sinkhorn.solves")
        recorder.inc("sinkhorn.loop_solves")
        if not converged:
            recorder.inc("sinkhorn.nonconverged")
        if not (np.isfinite(value) and np.isfinite(violation)):
            # Overflowed potentials (tiny reg / huge costs) — the watchdog's
            # structured breadcrumb for a poisoned MS loss.
            recorder.inc("health.issues")
            recorder.emit(
                "health.sinkhorn_nonfinite",
                value=float(value),
                marginal_violation=violation,
                reg=reg,
                n=n,
                m=m,
            )
        recorder.observe("sinkhorn.iterations", float(iteration))
        if warm_started:
            recorder.inc("sinkhorn.warm_starts")
            recorder.observe("sinkhorn.warm_iterations", float(iteration))
        recorder.observe("sinkhorn.marginal_violation", violation)
        recorder.emit(
            "sinkhorn.solve",
            n=n,
            m=m,
            reg=reg,
            iterations=iteration,
            converged=converged,
            marginal_violation=violation,
            warm_started=warm_started,
        )
    return SinkhornResult(
        plan=plan,
        value=value,
        transport_cost=float((plan * cost).sum()),
        iterations=iteration,
        converged=converged,
        marginal_violation=violation,
        f=f,
        g=g,
    )
