"""Log-domain Sinkhorn iterations for entropic optimal transport.

Implements the solver behind Definition 3 of the paper: the masking
regularised optimal transport metric

    OT_λ(ν, μ) = min_P <P, C> + λ Σ_ij p_ij log p_ij

over the transport polytope with uniform marginals.  The log-domain update
is numerically stable for the small regularisation weights probed by the
ablation benches, and the returned plan is exact to ``tol`` in marginal
violation.

The solver exposes its dual potentials so callers can warm-start: a DIM
training loop solves a near-identical problem for the same batch every
epoch, and reusing the previous epoch's ``(f, g)`` as the initial point
cuts the iteration count by an order of magnitude once training settles
(the same trick Muzellec et al. use for OT imputation).  Warm starts are
a pure acceleration — the fixed point, and therefore the returned plan,
is still converged to ``tol``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.special import logsumexp

from ..obs import get_recorder

__all__ = ["SinkhornResult", "sinkhorn", "regularized_ot_value", "entropy"]


@dataclass(frozen=True)
class SinkhornResult:
    """Output of the Sinkhorn solver.

    Attributes
    ----------
    plan:
        Optimal transport plan ``P*`` (n, m).
    value:
        The regularised objective ``<P*, C> + λ Σ p log p`` (Definition 3).
    transport_cost:
        The linear part ``<P*, C>`` alone.
    iterations:
        Number of Sinkhorn sweeps performed.
    converged:
        Whether the marginal violation dropped below tolerance.
    marginal_violation:
        L1 marginal violation of the returned plan,
        ``Σ_i |Σ_j P_ij − a_i| + Σ_j |Σ_i P_ij − b_j|``.  On a converged
        run this is below ``tol``; on a non-converged run it tells a
        near-miss (violation barely above ``tol``) apart from genuine
        divergence — previously the result only said ``converged=False``.
    f, g:
        Final dual potentials (scaled by 1/λ), satisfying
        ``plan = exp(f[:, None] + g[None, :] - C/λ)``.  Feed them back as
        ``init=(f, g)`` to warm-start a subsequent solve of a nearby
        problem.
    """

    plan: np.ndarray
    value: float
    transport_cost: float
    iterations: int
    converged: bool
    marginal_violation: float
    f: np.ndarray
    g: np.ndarray


def entropy(plan: np.ndarray, eps: float = 1e-300) -> float:
    """Negative entropy ``Σ p log p`` with the ``0 log 0 = 0`` convention."""
    plan = np.asarray(plan)
    positive = plan[plan > eps]
    return float((positive * np.log(positive)).sum())


def regularized_ot_value(plan: np.ndarray, cost: np.ndarray, reg: float) -> float:
    """Evaluate Definition 3's objective at a given plan."""
    return float((plan * cost).sum()) + reg * entropy(plan)


def _validate_marginal(name: str, weights: np.ndarray, expected: int) -> np.ndarray:
    """A marginal must be a strictly positive, finite vector of the right size.

    Zero or negative entries would flow through ``np.log`` into ``-inf``/NaN
    potentials and could yield a NaN plan wrapped in a finite-looking
    :class:`SinkhornResult`, so they are rejected up front with the offending
    index named.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size != expected:
        raise ValueError(
            f"marginal {name!r} must be a 1-D vector of length {expected} "
            f"matching the cost matrix, got shape {weights.shape}"
        )
    valid = np.isfinite(weights) & (weights > 0.0)
    if not valid.all():
        index = int(np.argmin(valid))
        raise ValueError(
            f"marginal {name!r} must be strictly positive and finite "
            f"(the log-domain solver takes its log): {name}[{index}] = "
            f"{weights[index]}"
        )
    return weights


def sinkhorn(
    cost: np.ndarray,
    reg: float,
    a: Optional[np.ndarray] = None,
    b: Optional[np.ndarray] = None,
    max_iter: int = 500,
    tol: float = 1e-9,
    init: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> SinkhornResult:
    """Solve entropic OT in the log domain.

    Parameters
    ----------
    cost:
        ``(n, m)`` cost matrix.
    reg:
        Entropic regularisation weight ``λ > 0``.
    a, b:
        Marginals (default uniform).  Must be strictly positive and match
        the cost matrix's shape; degenerate marginals raise ``ValueError``.
    max_iter:
        Maximum number of dual sweeps.
    tol:
        L1 marginal-violation tolerance for convergence.
    init:
        Optional ``(f, g)`` dual potentials (e.g. from a previous
        :class:`SinkhornResult` on a nearby problem) used as the starting
        point instead of zeros.  The solver still iterates to ``tol``, so
        a warm start changes the iteration count, not the answer.
    """
    if reg <= 0.0:
        raise ValueError(f"entropic regulariser must be positive, got {reg}")
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2:
        raise ValueError(f"cost must be a 2-D matrix, got shape {cost.shape}")
    n, m = cost.shape
    if a is None:
        a = np.full(n, 1.0 / n)
    if b is None:
        b = np.full(m, 1.0 / m)
    a = _validate_marginal("a", a, n)
    b = _validate_marginal("b", b, m)
    log_a = np.log(a)
    log_b = np.log(b)

    # Dual potentials (scaled by 1/reg): plan = exp(f + g - C/reg).
    neg_cost = -cost / reg
    warm_started = init is not None
    if warm_started:
        f0, g0 = init
        f = np.asarray(f0, dtype=np.float64).copy()
        g = np.asarray(g0, dtype=np.float64).copy()
        if f.shape != (n,) or g.shape != (m,):
            raise ValueError(
                f"init duals must have shapes ({n},) and ({m},), got "
                f"{f.shape} and {g.shape}"
            )
    else:
        f = np.zeros(n)
        g = np.zeros(m)
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        f = log_a - logsumexp(neg_cost + g[None, :], axis=1)
        g = log_b - logsumexp(neg_cost + f[:, None], axis=0)
        plan = np.exp(neg_cost + f[:, None] + g[None, :])
        violation = np.abs(plan.sum(axis=1) - a).sum() + np.abs(plan.sum(axis=0) - b).sum()
        if violation < tol:
            converged = True
            break
    plan = np.exp(neg_cost + f[:, None] + g[None, :])
    value = regularized_ot_value(plan, cost, reg)
    violation = float(
        np.abs(plan.sum(axis=1) - a).sum() + np.abs(plan.sum(axis=0) - b).sum()
    )
    recorder = get_recorder()
    if recorder.enabled:
        recorder.inc("sinkhorn.solves")
        if not converged:
            recorder.inc("sinkhorn.nonconverged")
        if not (np.isfinite(value) and np.isfinite(violation)):
            # Overflowed potentials (tiny reg / huge costs) — the watchdog's
            # structured breadcrumb for a poisoned MS loss.
            recorder.inc("health.issues")
            recorder.emit(
                "health.sinkhorn_nonfinite",
                value=float(value),
                marginal_violation=violation,
                reg=reg,
                n=n,
                m=m,
            )
        recorder.observe("sinkhorn.iterations", float(iteration))
        if warm_started:
            recorder.inc("sinkhorn.warm_starts")
            recorder.observe("sinkhorn.warm_iterations", float(iteration))
        recorder.observe("sinkhorn.marginal_violation", violation)
        recorder.emit(
            "sinkhorn.solve",
            n=n,
            m=m,
            reg=reg,
            iterations=iteration,
            converged=converged,
            marginal_violation=violation,
            warm_started=warm_started,
        )
    return SinkhornResult(
        plan=plan,
        value=value,
        transport_cost=float((plan * cost).sum()),
        iterations=iteration,
        converged=converged,
        marginal_violation=violation,
        f=f,
        g=g,
    )
