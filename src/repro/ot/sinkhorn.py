"""Log-domain Sinkhorn iterations for entropic optimal transport.

Implements the solver behind Definition 3 of the paper: the masking
regularised optimal transport metric

    OT_λ(ν, μ) = min_P <P, C> + λ Σ_ij p_ij log p_ij

over the transport polytope with uniform marginals.  The log-domain update
is numerically stable for the small regularisation weights probed by the
ablation benches, and the returned plan is exact to ``tol`` in marginal
violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.special import logsumexp

from ..obs import get_recorder

__all__ = ["SinkhornResult", "sinkhorn", "regularized_ot_value", "entropy"]


@dataclass(frozen=True)
class SinkhornResult:
    """Output of the Sinkhorn solver.

    Attributes
    ----------
    plan:
        Optimal transport plan ``P*`` (n, m).
    value:
        The regularised objective ``<P*, C> + λ Σ p log p`` (Definition 3).
    transport_cost:
        The linear part ``<P*, C>`` alone.
    iterations:
        Number of Sinkhorn sweeps performed.
    converged:
        Whether the marginal violation dropped below tolerance.
    marginal_violation:
        L1 marginal violation of the returned plan,
        ``Σ_i |Σ_j P_ij − a_i| + Σ_j |Σ_i P_ij − b_j|``.  On a converged
        run this is below ``tol``; on a non-converged run it tells a
        near-miss (violation barely above ``tol``) apart from genuine
        divergence — previously the result only said ``converged=False``.
    """

    plan: np.ndarray
    value: float
    transport_cost: float
    iterations: int
    converged: bool
    marginal_violation: float


def entropy(plan: np.ndarray, eps: float = 1e-300) -> float:
    """Negative entropy ``Σ p log p`` with the ``0 log 0 = 0`` convention."""
    plan = np.asarray(plan)
    positive = plan[plan > eps]
    return float((positive * np.log(positive)).sum())


def regularized_ot_value(plan: np.ndarray, cost: np.ndarray, reg: float) -> float:
    """Evaluate Definition 3's objective at a given plan."""
    return float((plan * cost).sum()) + reg * entropy(plan)


def sinkhorn(
    cost: np.ndarray,
    reg: float,
    a: Optional[np.ndarray] = None,
    b: Optional[np.ndarray] = None,
    max_iter: int = 500,
    tol: float = 1e-9,
) -> SinkhornResult:
    """Solve entropic OT in the log domain.

    Parameters
    ----------
    cost:
        ``(n, m)`` cost matrix.
    reg:
        Entropic regularisation weight ``λ > 0``.
    a, b:
        Marginals (default uniform).
    max_iter:
        Maximum number of dual sweeps.
    tol:
        L1 marginal-violation tolerance for convergence.
    """
    if reg <= 0.0:
        raise ValueError(f"entropic regulariser must be positive, got {reg}")
    cost = np.asarray(cost, dtype=np.float64)
    n, m = cost.shape
    if a is None:
        a = np.full(n, 1.0 / n)
    if b is None:
        b = np.full(m, 1.0 / m)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    log_a = np.log(a)
    log_b = np.log(b)

    # Dual potentials (scaled by 1/reg): plan = exp(f + g - C/reg).
    neg_cost = -cost / reg
    f = np.zeros(n)
    g = np.zeros(m)
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        f = log_a - logsumexp(neg_cost + g[None, :], axis=1)
        g = log_b - logsumexp(neg_cost + f[:, None], axis=0)
        plan = np.exp(neg_cost + f[:, None] + g[None, :])
        violation = np.abs(plan.sum(axis=1) - a).sum() + np.abs(plan.sum(axis=0) - b).sum()
        if violation < tol:
            converged = True
            break
    plan = np.exp(neg_cost + f[:, None] + g[None, :])
    value = regularized_ot_value(plan, cost, reg)
    violation = float(
        np.abs(plan.sum(axis=1) - a).sum() + np.abs(plan.sum(axis=0) - b).sum()
    )
    recorder = get_recorder()
    if recorder.enabled:
        recorder.inc("sinkhorn.solves")
        if not converged:
            recorder.inc("sinkhorn.nonconverged")
        recorder.observe("sinkhorn.iterations", float(iteration))
        recorder.observe("sinkhorn.marginal_violation", violation)
        recorder.emit(
            "sinkhorn.solve",
            n=n,
            m=m,
            reg=reg,
            iterations=iteration,
            converged=converged,
            marginal_violation=violation,
        )
    return SinkhornResult(
        plan=plan,
        value=value,
        transport_cost=float((plan * cost).sum()),
        iterations=iteration,
        converged=converged,
        marginal_violation=violation,
    )
