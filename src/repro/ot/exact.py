"""Exact (unregularised) optimal transport via linear programming.

Used as ground truth in the test suite: as the entropic regulariser
``λ → 0`` the Sinkhorn value must converge to this LP value.  Only suitable
for small problems (the LP has ``n·m`` variables).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.optimize import linprog

__all__ = ["exact_ot"]


def exact_ot(
    cost: np.ndarray,
    a: Optional[np.ndarray] = None,
    b: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    """Solve ``min_P <P, C>`` over the transport polytope.

    Parameters
    ----------
    cost:
        ``(n, m)`` cost matrix.
    a, b:
        Source / target marginals; default uniform (``1/n`` and ``1/m``),
        matching the empirical measures of Definition 2.

    Returns
    -------
    ``(value, plan)`` where ``plan`` has row sums ``a`` and column sums ``b``.
    """
    cost = np.asarray(cost, dtype=np.float64)
    n, m = cost.shape
    if a is None:
        a = np.full(n, 1.0 / n)
    if b is None:
        b = np.full(m, 1.0 / m)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if not np.isclose(a.sum(), b.sum()):
        raise ValueError("marginals must have equal total mass")

    # Equality constraints: row sums = a, column sums = b.  One constraint is
    # redundant (total mass); scipy's HiGHS handles that fine.
    row_constraints = np.zeros((n, n * m))
    for i in range(n):
        row_constraints[i, i * m : (i + 1) * m] = 1.0
    col_constraints = np.zeros((m, n * m))
    for j in range(m):
        col_constraints[j, j::m] = 1.0
    a_eq = np.vstack([row_constraints, col_constraints])
    b_eq = np.concatenate([a, b])

    result = linprog(cost.reshape(-1), A_eq=a_eq, b_eq=b_eq, bounds=(0, None), method="highs")
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"exact OT solver failed: {result.message}")
    plan = result.x.reshape(n, m)
    return float(result.fun), plan
