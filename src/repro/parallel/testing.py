"""Serial/parallel parity harness — the correctness gate for this package.

A parallel substrate is only trustworthy if it is provably equivalent to
serial execution.  :func:`assert_backend_parity` encodes that check as a
reusable assertion: build the same task set once per backend/worker-count
combination, run it, and compare results structurally — by default to the
bit (``atol=rtol=0``).  The repo's own parity suites
(``tests/test_parallel.py``, ``benchmarks/test_ext_parallel.py``) are built
on it, and future PRs that add parallel call sites are expected to gate
them the same way.

``tasks_factory`` must build a *fresh* task list on every call: tasks may
close over mutable state (models, caches), so reusing one list across
backends would let the first run contaminate the second.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .context import ExecutionContext, available_cpus

__all__ = ["DEFAULT_WORKER_COUNTS", "run_with_backend", "assert_backend_parity"]

# The worker counts the parity gate exercises by default: degenerate pool,
# smallest real pool, and everything the machine has.
DEFAULT_WORKER_COUNTS: Tuple[int, ...] = (1, 2, available_cpus())


def run_with_backend(
    tasks_factory: Callable[[], Sequence[Callable[[], object]]],
    backend: str,
    workers: Optional[int] = None,
    label: str = "parity",
) -> List[object]:
    """Build a fresh task set and run it under one backend."""
    context = ExecutionContext(backend=backend, workers=workers)
    return context.run(list(tasks_factory()), label=label)


def _assert_equal(a: object, b: object, atol: float, rtol: float, path: str) -> None:
    exact = atol == 0.0 and rtol == 0.0
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a_arr, b_arr = np.asarray(a), np.asarray(b)
        assert a_arr.shape == b_arr.shape, (
            f"parity mismatch at {path}: shapes {a_arr.shape} vs {b_arr.shape}"
        )
        same = (
            np.array_equal(a_arr, b_arr)
            if exact
            else np.allclose(a_arr, b_arr, atol=atol, rtol=rtol, equal_nan=True)
        )
        assert same, f"parity mismatch at {path}: arrays differ"
        return
    if isinstance(a, dict) and isinstance(b, dict):
        assert set(a) == set(b), f"parity mismatch at {path}: keys {set(a)} vs {set(b)}"
        for key in a:
            _assert_equal(a[key], b[key], atol, rtol, f"{path}[{key!r}]")
        return
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        assert len(a) == len(b), f"parity mismatch at {path}: lengths {len(a)} vs {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_equal(x, y, atol, rtol, f"{path}[{i}]")
        return
    if isinstance(a, float) and isinstance(b, float) and not exact:
        assert np.isclose(a, b, atol=atol, rtol=rtol, equal_nan=True), (
            f"parity mismatch at {path}: {a!r} vs {b!r}"
        )
        return
    if hasattr(a, "__dataclass_fields__") and hasattr(b, "__dataclass_fields__"):
        assert type(a) is type(b), f"parity mismatch at {path}: {type(a)} vs {type(b)}"
        for name in a.__dataclass_fields__:
            _assert_equal(
                getattr(a, name), getattr(b, name), atol, rtol, f"{path}.{name}"
            )
        return
    assert a == b, f"parity mismatch at {path}: {a!r} vs {b!r}"


def assert_backend_parity(
    tasks_factory: Callable[[], Sequence[Callable[[], object]]],
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    atol: float = 0.0,
    rtol: float = 0.0,
    label: str = "parity",
) -> List[object]:
    """Assert serial and process backends agree on ``tasks_factory``'s tasks.

    Runs the task set once serially (the reference), then once per entry in
    ``worker_counts`` under the process backend, comparing each result list
    structurally (numbers, arrays, dicts, sequences, dataclasses).  With the
    default ``atol=rtol=0`` the comparison is bit-exact.  Returns the serial
    reference results for further assertions.
    """
    reference = run_with_backend(tasks_factory, "serial", label=label)
    for workers in worker_counts:
        candidate = run_with_backend(
            tasks_factory, "process", workers=workers, label=label
        )
        _assert_equal(
            candidate, reference, atol, rtol, f"process[workers={workers}]"
        )
    return reference
