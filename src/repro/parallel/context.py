"""Execution contexts: run independent task sets serially or on a pool.

:class:`ExecutionContext` is the one execution primitive the rest of the
stack uses for embarrassingly parallel work — SSE's k-sample pass-probability
loop, the bench runner's (method × dataset) grid, and chunked evaluation-time
Sinkhorn divergences.  Two backends share one contract:

``serial``
    Tasks run in submission order in the calling process.

``process``
    Tasks run on a fork-based ``multiprocessing`` pool.  Tasks may be
    arbitrary closures (the fork child inherits them); only their *return
    values* must be picklable.  Task exceptions propagate to the caller
    exactly as they would serially.  Pool-infrastructure failures (fork
    unavailable, nested daemonic pools, broken pipes) degrade gracefully:
    the context emits a ``parallel.fallback`` obs event and re-runs the
    task set serially — which is why tasks must be idempotent.

Results always come back in submission order, and per-task randomness must
go through :mod:`repro.parallel.seeding`, so the two backends are
interchangeable bit-for-bit — a property the test suite enforces with
:mod:`repro.parallel.testing`.

Telemetry: when a recorder is attached, every batch emits a
``parallel.tasks`` event; under the process backend each worker records
into its own in-memory recorder and the parent absorbs those child traces
(events, counters, gauges, histogram moments) in task order, so counters
like ``bench.runs`` aggregate identically on both backends.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Tuple

from ..obs import get_recorder
from ..obs.recorder import InMemoryRecorder, recording
from ..obs.tracing import TraceContext, current_trace, trace_context

__all__ = ["ExecutionContext", "available_cpus", "env_workers"]

BACKENDS = ("serial", "process")

# Fork-inherited task table: _run_indexed_task must be importable (it is sent
# to workers by name), while the tasks themselves may be closures — workers
# reach them through the memory image inherited at fork time.  The spawn
# payload also carries the submitting thread's trace context (so worker
# spans re-link to the parent trace) and the parent recorder's clock epoch
# (so worker event timestamps land on the parent clock — see
# InMemoryRecorder.absorb's anchored path).
_TASKS: Sequence[Callable[[], object]] = ()
_CAPTURE_OBS: bool = False
_SPAWN_TRACE: Optional[TraceContext] = None
_SPAWN_CLOCK: Optional[float] = None


def _run_indexed_task(index: int) -> Tuple[str, object, Optional[dict]]:
    """Worker entry point: run task ``index`` from the inherited table.

    Task exceptions are returned (not raised) so the parent can tell a
    failing *task* from a failing *pool*; unpicklable exceptions are
    re-wrapped so the status tuple always survives the result pipe.
    """
    import pickle

    task = _TASKS[index]
    try:
        if _CAPTURE_OBS:
            child = InMemoryRecorder(clock_anchor=_SPAWN_CLOCK)
            with trace_context(_SPAWN_TRACE):
                with recording(child) as rec:
                    value = task()
            return ("ok", value, rec.to_dict(include_samples=True))
        return ("ok", task(), None)
    except Exception as exc:  # noqa: BLE001 — transported to the parent
        try:
            pickle.dumps(exc)
            payload: Exception = exc
        except Exception:
            payload = RuntimeError(f"{type(exc).__name__}: {exc}")
        return ("err", payload, None)


def available_cpus() -> int:
    """CPU count with a floor of 1 (``os.cpu_count`` may return ``None``)."""
    return os.cpu_count() or 1


def env_workers() -> int:
    """Worker count requested via ``REPRO_WORKERS`` (0 when unset/invalid)."""
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    try:
        return max(0, int(raw)) if raw else 0
    except ValueError:
        return 0


class ExecutionContext:
    """Runs a list of zero-argument tasks under one backend.

    Parameters
    ----------
    backend:
        ``"serial"`` or ``"process"``.
    workers:
        Pool size for the process backend; ``None`` means ``REPRO_WORKERS``
        if set, else :func:`available_cpus`.  A resolved count of 1 runs
        serially (a one-worker pool costs fork time and buys nothing).
    """

    def __init__(self, backend: str = "serial", workers: Optional[int] = None) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.backend = backend
        self.workers = workers

    @classmethod
    def from_env(cls, workers: Optional[int] = None) -> "ExecutionContext":
        """The context a CLI/bench entry point should use by default.

        ``workers`` (e.g. a ``--workers`` flag) wins; otherwise the
        ``REPRO_WORKERS`` environment variable; otherwise serial.  A count
        of 2+ selects the process backend.
        """
        if workers is None:
            workers = env_workers()
        if workers and workers > 1:
            return cls(backend="process", workers=workers)
        return cls(backend="serial")

    def resolved_workers(self) -> int:
        """The pool size the process backend would use right now."""
        return self.workers if self.workers is not None else (env_workers() or available_cpus())

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"ExecutionContext(backend={self.backend!r}, workers={self.workers!r})"

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Callable[[], object]], label: str = "tasks") -> List[object]:
        """Run ``tasks`` and return their results in submission order.

        ``label`` names the batch in the ``parallel.tasks`` telemetry event.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        recorder = get_recorder()
        workers = self.resolved_workers()
        use_pool = self.backend == "process" and workers > 1 and len(tasks) > 1
        if not use_pool:
            if recorder.enabled:
                recorder.inc("parallel.batches")
                recorder.emit(
                    "parallel.tasks",
                    label=label,
                    backend="serial",
                    workers=1,
                    n_tasks=len(tasks),
                )
            return [task() for task in tasks]
        try:
            outputs = self._run_pool(tasks, min(workers, len(tasks)))
        except Exception as exc:  # pool infrastructure failed, not a task
            if recorder.enabled:
                recorder.inc("parallel.fallbacks")
                recorder.emit(
                    "parallel.fallback",
                    label=label,
                    workers=workers,
                    reason=f"{type(exc).__name__}: {exc}",
                )
            return [task() for task in tasks]
        if recorder.enabled:
            recorder.inc("parallel.batches")
            recorder.emit(
                "parallel.tasks",
                label=label,
                backend="process",
                workers=min(workers, len(tasks)),
                n_tasks=len(tasks),
            )
        results: List[object] = []
        for status, value, child_trace in outputs:
            if status == "err":
                raise value
            # Absorbing in submission order keeps parent-side metrics
            # deterministic regardless of which worker ran what.
            if child_trace is not None and recorder.enabled:
                recorder.absorb(child_trace)
            results.append(value)
        return results

    def _run_pool(self, tasks, workers: int):
        """One fork pool over the task table; raises on infrastructure errors."""
        import multiprocessing

        global _TASKS, _CAPTURE_OBS, _SPAWN_TRACE, _SPAWN_CLOCK
        context = multiprocessing.get_context("fork")  # ValueError on platforms without fork
        recorder = get_recorder()
        _TASKS = tasks
        _CAPTURE_OBS = recorder.enabled
        _SPAWN_TRACE = current_trace()
        _SPAWN_CLOCK = getattr(recorder, "_start", None)
        try:
            with context.Pool(processes=workers) as pool:
                return pool.map(_run_indexed_task, range(len(tasks)))
        finally:
            _TASKS = ()
            _CAPTURE_OBS = False
            _SPAWN_TRACE = None
            _SPAWN_CLOCK = None
