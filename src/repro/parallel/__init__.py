"""Parallel execution subsystem: backends, deterministic seeding, parity.

Contract (full text in ``docs/parallel.md``):

* :class:`ExecutionContext` runs a list of independent zero-argument tasks
  under a ``serial`` or fork-based ``process`` backend and returns results
  in submission order; pool failures fall back to serial with a
  ``parallel.fallback`` obs event.
* Per-task randomness comes from :mod:`repro.parallel.seeding`'s spawn-key
  scheme, so results are a pure function of ``(entropy, domain, key)`` —
  identical across backends, worker counts, and call order.
* :mod:`repro.parallel.testing` turns that equivalence into an assertion
  (:func:`assert_backend_parity`) used by the repo's parity suites.

Layering: imports only :mod:`repro.obs` (and the standard library), so any
compute module — ``repro.ot``, ``repro.core``, ``repro.bench`` — may use it.
"""

from .context import ExecutionContext, available_cpus, env_workers
from .seeding import derive_entropy, domain_key, spawn_rng, spawn_rngs, spawn_seed
from .testing import assert_backend_parity, run_with_backend

__all__ = [
    "ExecutionContext",
    "available_cpus",
    "env_workers",
    "domain_key",
    "spawn_seed",
    "spawn_rng",
    "spawn_rngs",
    "derive_entropy",
    "assert_backend_parity",
    "run_with_backend",
]
