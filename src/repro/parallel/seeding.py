"""Deterministic per-task seeding for parallel execution.

The parity guarantee of :mod:`repro.parallel` — serial and process backends
produce bit-identical results — only holds if every task derives its
randomness from *where it sits in the task set*, never from shared mutable
generator state.  The scheme here is spawn-key seeding:

    SeedSequence(entropy, spawn_key=(crc32(domain), *key))

``entropy`` is the run's root seed, ``domain`` names the call site (e.g.
``"sse.pass_probability"``) so two subsystems with the same numeric keys
cannot collide, and ``*key`` positions the task (sample index, chunk index,
evaluation size, ...).  The derived streams are independent by the
SeedSequence spawning construction and depend only on ``(entropy, domain,
key)`` — not on call order, worker assignment, or backend.
"""

from __future__ import annotations

import zlib
from typing import List

import numpy as np

__all__ = ["domain_key", "spawn_seed", "spawn_rng", "spawn_rngs", "derive_entropy"]


def domain_key(domain: str) -> int:
    """Stable 32-bit key for a call-site domain string (crc32, not hash():
    str hashes are salted per process, which would break cross-process
    determinism)."""
    return zlib.crc32(domain.encode("utf-8"))


def spawn_seed(entropy: int, domain: str, *key: int) -> np.random.SeedSequence:
    """The SeedSequence for task ``key`` of ``domain`` under root ``entropy``."""
    return np.random.SeedSequence(int(entropy), spawn_key=(domain_key(domain), *map(int, key)))


def spawn_rng(entropy: int, domain: str, *key: int) -> np.random.Generator:
    """A fresh Generator for task ``key`` — same stream on every backend."""
    return np.random.default_rng(spawn_seed(entropy, domain, *key))


def spawn_rngs(entropy: int, domain: str, n: int, *key: int) -> List[np.random.Generator]:
    """``n`` independent Generators, one per task index appended to ``key``."""
    return [spawn_rng(entropy, domain, *key, i) for i in range(n)]


def derive_entropy(rng: np.random.Generator) -> int:
    """One stable root-entropy integer drawn from ``rng``.

    Advances the generator by exactly one draw; call it once at set-up time
    (not per task) so the derived entropy — and everything spawned from it —
    is a pure function of the generator's state at that moment.
    """
    return int(rng.integers(0, 2**63, dtype=np.uint64))
