"""Grid search for imputer hyper-parameters.

Scores each configuration on a fresh holdout of the training data (the same
20 %-of-observed protocol as the paper's RMSE metric), so tuning never sees
the evaluation holdout.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..data.dataset import IncompleteDataset
from ..data.missingness import holdout_split

__all__ = ["TuningResult", "grid_search"]


@dataclass(frozen=True)
class TrialOutcome:
    """One configuration's score."""

    params: Dict[str, object]
    rmse: float
    seconds: float


@dataclass
class TuningResult:
    """All trials, sorted best-first."""

    trials: List[TrialOutcome] = field(default_factory=list)

    @property
    def best(self) -> TrialOutcome:
        if not self.trials:
            raise ValueError("no trials recorded")
        return self.trials[0]

    def summary(self) -> str:
        lines = [f"{'rmse':>8}  {'seconds':>8}  params"]
        for trial in self.trials:
            lines.append(f"{trial.rmse:>8.4f}  {trial.seconds:>8.2f}  {trial.params}")
        return "\n".join(lines)


def grid_search(
    factory: Callable[..., object],
    dataset: IncompleteDataset,
    param_grid: Dict[str, Sequence],
    tuning_holdout: float = 0.2,
    seed: int = 0,
) -> TuningResult:
    """Exhaustive search over ``param_grid`` for an imputer factory.

    Parameters
    ----------
    factory:
        Callable building a fresh imputer from keyword arguments, e.g.
        ``GAINImputer`` or ``lambda **kw: make_imputer("knn", **kw)``.
    dataset:
        Training data (may already contain natural missingness).
    param_grid:
        Mapping of parameter name to candidate values; the Cartesian product
        is evaluated.
    tuning_holdout:
        Fraction of observed cells hidden for scoring each trial.
    """
    if not param_grid:
        raise ValueError("param_grid must be non-empty")
    names = list(param_grid)
    split = holdout_split(dataset, tuning_holdout, np.random.default_rng(seed))
    trials = []
    for combo in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, combo))
        model = factory(**params)
        start = time.perf_counter()
        imputed = model.fit_transform(split.train)
        elapsed = time.perf_counter() - start
        trials.append(
            TrialOutcome(params=params, rmse=split.rmse(imputed), seconds=elapsed)
        )
    trials.sort(key=lambda trial: trial.rmse)
    return TuningResult(trials=trials)
