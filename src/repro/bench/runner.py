"""Experiment runner behind every table/figure reproduction.

The paper's protocol: hide 20 % of observed cells as ground truth, run each
method, report RMSE (mean ± bias over seeds), wall-clock training time, and
the training sample rate R_t (100 % for plain methods, n*/N for SCIS).
Methods that exceed the time budget are reported as "—" (the paper uses a
10⁵-second cutoff; we scale it down).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core import SCIS
from ..core.dim import DimConfig, DimImputer
from ..data import HoldoutSplit, IncompleteDataset, MinMaxNormalizer, generate, holdout_split
from ..models.base import Imputer
from ..obs import get_recorder, trace
from ..parallel import ExecutionContext

__all__ = [
    "MethodResult",
    "BenchCase",
    "prepare_case",
    "run_method",
    "run_comparison",
    "run_smoke_bench",
]


@dataclass
class MethodResult:
    """Aggregated outcome of one method on one dataset."""

    method: str
    dataset: str
    rmse_mean: float = float("nan")
    rmse_std: float = float("nan")
    seconds: float = float("nan")
    sample_rate: float = 1.0  # R_t; SCIS overrides with n*/N
    timed_out: bool = False
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def available(self) -> bool:
        return not self.timed_out and np.isfinite(self.rmse_mean)


@dataclass
class BenchCase:
    """One prepared dataset: normalised values plus the RMSE holdout."""

    name: str
    holdout: HoldoutSplit
    labels: np.ndarray
    task: str

    @property
    def train(self) -> IncompleteDataset:
        return self.holdout.train


def prepare_case(
    dataset_name: str,
    n_samples: Optional[int] = None,
    seed: int = 0,
    holdout_rate: float = 0.2,
    missing_rate: Optional[float] = None,
    mechanism: str = "mcar",
) -> BenchCase:
    """Generate, min-max normalise, and hold out ground-truth cells."""
    generated = generate(
        dataset_name, n_samples=n_samples, seed=seed, missing_rate=missing_rate,
        mechanism=mechanism,
    )
    normalized = MinMaxNormalizer().fit_transform(generated.dataset)
    split = holdout_split(normalized, holdout_rate, np.random.default_rng(seed + 1))
    return BenchCase(
        name=dataset_name,
        holdout=split,
        labels=generated.labels,
        task=generated.spec.task,
    )


def run_method(
    factory: Callable[[int], object],
    case: BenchCase,
    n_seeds: int = 1,
    time_budget: Optional[float] = None,
    method_name: Optional[str] = None,
) -> MethodResult:
    """Run one method over ``n_seeds`` seeds and aggregate.

    ``factory(seed)`` must return either an :class:`Imputer` or a
    :class:`~repro.core.SCIS` instance.  The paper averages five seeded runs;
    benches default to fewer for wall-clock sanity.  If a run exceeds
    ``time_budget`` the remaining seeds are skipped and the result is marked
    unavailable, mirroring the paper's "—" cells.
    """
    rmses: List[float] = []
    times: List[float] = []
    rates: List[float] = []
    name = method_name or "method"
    recorder = get_recorder()
    for seed in range(n_seeds):
        runner = factory(seed)
        start = time.perf_counter()
        with trace("bench.run", method=name, dataset=case.name, seed=seed):
            if isinstance(runner, SCIS):
                result = runner.fit_transform(case.train)
                imputed = result.imputed
                rates.append(result.sample_rate)
                if method_name is None:
                    name = f"scis-{runner.model.name}"
            elif isinstance(runner, DimImputer):
                imputed = runner.fit_transform(case.train)
                rates.append(runner.sample_rate)
                if method_name is None:
                    name = runner.name
            elif isinstance(runner, Imputer):
                imputed = runner.fit_transform(case.train)
                rates.append(1.0)
                if method_name is None:
                    name = runner.name
            else:
                raise TypeError(
                    f"factory returned unsupported runner {type(runner)!r}"
                )
        elapsed = time.perf_counter() - start
        rmses.append(case.holdout.rmse(imputed))
        times.append(elapsed)
        if time_budget is not None and elapsed > time_budget:
            if recorder.enabled:
                recorder.inc("bench.timeouts")
                recorder.emit(
                    "bench.result",
                    method=name,
                    dataset=case.name,
                    timed_out=True,
                    seconds=elapsed,
                )
            return MethodResult(
                method=name,
                dataset=case.name,
                timed_out=True,
                seconds=elapsed,
            )
    aggregated = MethodResult(
        method=name,
        dataset=case.name,
        rmse_mean=float(np.mean(rmses)),
        rmse_std=float(np.std(rmses)),
        seconds=float(np.mean(times)),
        sample_rate=float(np.mean(rates)),
    )
    if recorder.enabled:
        recorder.inc("bench.runs")
        recorder.emit(
            "bench.result",
            method=name,
            dataset=case.name,
            rmse_mean=aggregated.rmse_mean,
            rmse_std=aggregated.rmse_std,
            seconds=aggregated.seconds,
            sample_rate=aggregated.sample_rate,
            timed_out=False,
        )
    return aggregated


def run_smoke_bench(
    n_samples: int = 96,
    epochs: int = 2,
    seed: int = 0,
    context: Optional[ExecutionContext] = None,
) -> List[MethodResult]:
    """Tiny fixed bench used for regression gating (seconds, not minutes).

    One small synthetic dataset, a 5-cell method matrix spanning the
    stack's layers: ``mean`` (data plumbing only), ``knn`` (classical
    numerics), two short DIM runs — ``dim-gain`` (autodiff + Sinkhorn +
    optimiser hot paths) and ``dim-gain-adv`` (the same plus the
    adversarial phase) — and ``otdirect`` (direct batch-Sinkhorn descent on
    the missing cells, exercising the stacked/warm-started solver path).
    The training cells dominate wall-clock, so the matrix parallelises well
    across two workers.  Run it under :func:`repro.obs.recording` to also
    capture the ``sinkhorn.iterations`` / epoch-timing metrics the baseline
    snapshots.
    """
    from ..models import GAINImputer, KNNImputer, MeanImputer, SinkhornImputer

    case = prepare_case("trial", n_samples=n_samples, seed=seed)
    dim_config = DimConfig(
        epochs=epochs, batch_size=32, sinkhorn_max_iter=50, use_adversarial=False
    )
    adv_config = DimConfig(
        epochs=epochs, batch_size=32, sinkhorn_max_iter=50, use_adversarial=True
    )
    factories: Dict[str, Callable[[int], object]] = {
        "mean": lambda s: MeanImputer(),
        "knn": lambda s: KNNImputer(),
        "dim-gain": lambda s: DimImputer(
            GAINImputer(epochs=epochs, seed=s), config=dim_config, seed=s
        ),
        "dim-gain-adv": lambda s: DimImputer(
            GAINImputer(epochs=epochs, seed=s), config=adv_config, seed=s
        ),
        "otdirect": lambda s: SinkhornImputer(
            epochs=10 * epochs,
            batch_size=32,
            sinkhorn_max_iter=50,
            mlp_epochs=epochs,
            seed=s,
        ),
    }
    return run_comparison([case], factories, n_seeds=1, context=context)


def run_comparison(
    cases: List[BenchCase],
    factories: Dict[str, Callable[[int], object]],
    n_seeds: int = 1,
    time_budget: Optional[float] = None,
    context: Optional[ExecutionContext] = None,
) -> List[MethodResult]:
    """Cartesian product of methods × datasets, in a stable order.

    Each (method × dataset) cell is independent, so the grid fans out
    through ``context`` (serial by default; ``REPRO_WORKERS`` or an
    explicit :class:`~repro.parallel.ExecutionContext` enables the process
    backend).  Results keep the serial iteration order — cases outer,
    factories inner — and per-worker telemetry (``bench.result`` events,
    counters) is merged back into the parent recorder, so serial and
    parallel runs produce identical result tables.
    """
    context = context if context is not None else ExecutionContext.from_env()
    tasks = []
    for case in cases:
        for method_name, factory in factories.items():
            tasks.append(
                lambda factory=factory, case=case, method_name=method_name: run_method(
                    factory,
                    case,
                    n_seeds=n_seeds,
                    time_budget=time_budget,
                    method_name=method_name,
                )
            )
    return context.run(tasks, label="bench.run_comparison")
