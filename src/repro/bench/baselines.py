"""Persisted bench baselines and regression diffing.

A *baseline* is a small versioned JSON file (``BENCH_<name>.json``) holding
the key scalar metrics of a bench run — steady-state epoch seconds,
Sinkhorn iterations per solve, RMSE per method/dataset — so a later run
(or CI) can be diffed against it and regressions flagged before they land.

Schema::

    {"version": 1, "kind": "bench-baseline", "name": "smoke",
     "metrics": {"rmse.mean.trial": 0.11, "seconds.mean.trial": 0.4, ...}}

Metric names are dotted flat keys.  Names containing ``seconds`` are
*timing* metrics: machine-dependent, so :func:`diff_baselines` gives them
their own (looser) threshold — CI can effectively mute them while still
hard-gating the machine-independent metrics (RMSE, iteration counts).

Baselines can be built directly from :class:`MethodResult` lists
(:func:`snapshot_from_results`) or extracted from a recorded telemetry
trace (:func:`snapshot_from_trace`), and the diff side accepts either a
baseline file or a raw trace JSON — ``repro obs diff`` normalises both.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .runner import MethodResult

__all__ = [
    "BASELINE_KIND",
    "BASELINE_VERSION",
    "MetricDelta",
    "snapshot_from_results",
    "snapshot_from_trace",
    "write_baseline",
    "load_baseline",
    "diff_baselines",
    "format_diff",
    "is_time_metric",
]

BASELINE_VERSION = 1
BASELINE_KIND = "bench-baseline"

# Default relative-change gates: machine-independent metrics are tight,
# wall-clock ones loose (a 2x slowdown is rel change 1.0 > 0.75).
DEFAULT_THRESHOLD = 0.25
DEFAULT_TIME_THRESHOLD = 0.75


def is_time_metric(name: str) -> bool:
    """Timing metrics get the looser machine-dependent threshold."""
    return "seconds" in name or name.endswith(".time")


@dataclass
class MetricDelta:
    """One metric's change between a baseline and a candidate run."""

    metric: str
    base: Optional[float]
    new: Optional[float]
    rel_change: Optional[float]  # (new - base) / |base|; None when undefined
    regressed: bool
    missing: bool = False  # metric present on one side only

    def describe(self) -> str:
        if self.missing:
            side = "baseline" if self.base is None else "candidate"
            return f"only in {'candidate' if self.base is None else 'baseline'}"
        if self.rel_change is None:
            return "incomparable"
        return f"{self.rel_change:+.1%}"


def snapshot_from_results(
    results: Sequence[MethodResult], name: str
) -> Dict[str, object]:
    """Build a baseline dict from bench :class:`MethodResult` aggregates."""
    metrics: Dict[str, float] = {}
    for result in results:
        key = f"{result.method}.{result.dataset}"
        if math.isfinite(result.rmse_mean):
            metrics[f"rmse.{key}"] = float(result.rmse_mean)
        if math.isfinite(result.seconds):
            metrics[f"seconds.{key}"] = float(result.seconds)
        metrics[f"sample_rate.{key}"] = float(result.sample_rate)
    return {
        "version": BASELINE_VERSION,
        "kind": BASELINE_KIND,
        "name": name,
        "metrics": metrics,
    }


def _mean(values: List[float]) -> Optional[float]:
    finite = [v for v in values if v is not None and math.isfinite(v)]
    return sum(finite) / len(finite) if finite else None


def snapshot_from_trace(trace: Dict[str, object], name: str) -> Dict[str, object]:
    """Extract baseline metrics from a recorded telemetry trace.

    Pulls the regression-sensitive signals the trace carries:

    * ``bench.result`` events → ``rmse.<method>.<dataset>`` and
      ``seconds.<method>.<dataset>``;
    * the ``sinkhorn.iterations`` histogram mean → ``sinkhorn.iterations``;
    * the ``span.dim.epoch.seconds`` histogram mean → steady-state
      ``dim.epoch_seconds``;
    * the batched-solver signals: ``sinkhorn.loop_solves`` (should stay
      near zero while the stacked path is default-on — a climb means the
      hot loop fell back to serialized solves) and the
      ``sinkhorn.batched_stack_size`` / ``sinkhorn.batched_sweeps``
      histogram means.
    """
    metrics: Dict[str, float] = {}
    by_case: Dict[str, Dict[str, List[float]]] = {}
    for event in trace.get("events", []):
        if event.get("name") != "bench.result":
            continue
        fields = event.get("fields", {})
        if fields.get("timed_out"):
            continue
        key = f"{fields.get('method')}.{fields.get('dataset')}"
        slot = by_case.setdefault(key, {"rmse": [], "seconds": []})
        if fields.get("rmse_mean") is not None:
            slot["rmse"].append(float(fields["rmse_mean"]))
        if fields.get("seconds") is not None:
            slot["seconds"].append(float(fields["seconds"]))
    for key, slot in sorted(by_case.items()):
        rmse = _mean(slot["rmse"])
        seconds = _mean(slot["seconds"])
        if rmse is not None:
            metrics[f"rmse.{key}"] = rmse
        if seconds is not None:
            metrics[f"seconds.{key}"] = seconds
    histograms = trace.get("metrics", {}).get("histograms", {})
    sinkhorn = histograms.get("sinkhorn.iterations", {})
    if sinkhorn.get("mean") is not None:
        metrics["sinkhorn.iterations"] = float(sinkhorn["mean"])
    epoch = histograms.get("span.dim.epoch.seconds", {})
    if epoch.get("mean") is not None:
        metrics["dim.epoch_seconds"] = float(epoch["mean"])
    counters = trace.get("metrics", {}).get("counters", {})
    if "sinkhorn.batched_solves" in counters:
        # Gate the batched path staying default-on: loop solves creeping
        # back into a trace that has stacked solves is a regression.
        metrics["sinkhorn.loop_solves"] = float(
            counters.get("sinkhorn.loop_solves", 0.0)
        )
    stack = histograms.get("sinkhorn.batched_stack_size", {})
    if stack.get("mean") is not None:
        metrics["sinkhorn.batched_stack_size"] = float(stack["mean"])
    sweeps = histograms.get("sinkhorn.batched_sweeps", {})
    if sweeps.get("mean") is not None:
        metrics["sinkhorn.batched_sweeps"] = float(sweeps["mean"])
    return {
        "version": BASELINE_VERSION,
        "kind": BASELINE_KIND,
        "name": name,
        "metrics": metrics,
    }


def write_baseline(baseline: Dict[str, object], path: Union[str, Path]) -> Path:
    """Write a baseline dict as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Union[str, Path]) -> Dict[str, object]:
    """Load and validate a ``BENCH_<name>.json`` baseline file.

    Raw telemetry traces (recognised by their ``events`` key) are
    converted on the fly via :func:`snapshot_from_trace`, so the diff CLI
    accepts either artefact on either side.
    """
    path = Path(path)
    data = json.loads(path.read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path} is not a JSON object")
    if "events" in data:  # a raw trace: distill it into baseline metrics
        return snapshot_from_trace(data, name=path.stem)
    if data.get("kind") != BASELINE_KIND:
        raise ValueError(
            f"{path} is not a bench baseline (kind={data.get('kind')!r}; "
            f"expected {BASELINE_KIND!r})"
        )
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path} has unsupported baseline version {version!r} "
            f"(this build reads version {BASELINE_VERSION})"
        )
    if not isinstance(data.get("metrics"), dict):
        raise ValueError(f"{path} has no 'metrics' object")
    return data


def diff_baselines(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
    time_threshold: float = DEFAULT_TIME_THRESHOLD,
) -> List[MetricDelta]:
    """Compare two baselines metric-by-metric.

    A metric *regresses* when its relative increase exceeds the applicable
    threshold — metrics here are all "lower is better" (RMSE, seconds,
    iteration counts), so only increases count.  Metrics present on one
    side only are reported with ``missing=True`` but never regress (new
    benches may legitimately add or drop cases).
    """
    base_metrics = baseline.get("metrics", {})
    new_metrics = candidate.get("metrics", {})
    deltas: List[MetricDelta] = []
    for metric in sorted(set(base_metrics) | set(new_metrics)):
        base = base_metrics.get(metric)
        new = new_metrics.get(metric)
        if base is None or new is None:
            deltas.append(
                MetricDelta(metric, base, new, None, regressed=False, missing=True)
            )
            continue
        base_f, new_f = float(base), float(new)
        if not (math.isfinite(base_f) and math.isfinite(new_f)):
            deltas.append(MetricDelta(metric, base_f, new_f, None, regressed=False))
            continue
        rel = (new_f - base_f) / max(abs(base_f), 1e-12)
        gate = time_threshold if is_time_metric(metric) else threshold
        deltas.append(MetricDelta(metric, base_f, new_f, rel, regressed=rel > gate))
    return deltas


def format_diff(deltas: Sequence[MetricDelta]) -> str:
    """Aligned text table of metric deltas, regressions marked ``!``."""
    header = ("", "metric", "base", "new", "change")
    rows = [header]
    for delta in deltas:
        rows.append(
            (
                "!" if delta.regressed else "",
                delta.metric,
                "-" if delta.base is None else f"{delta.base:.6g}",
                "-" if delta.new is None else f"{delta.new:.6g}",
                delta.describe(),
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    regressions = sum(d.regressed for d in deltas)
    lines.append(
        f"{len(deltas)} metrics compared, {regressions} regression"
        f"{'' if regressions == 1 else 's'}"
    )
    return "\n".join(lines)
