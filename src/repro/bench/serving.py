"""Serving bench: throughput, latency, and coalescing under concurrent load.

``run_serving_bench`` stands up the full serving path end to end — train a
DIM imputer and a statistical baseline, persist both through the
:class:`repro.serve.ModelRegistry`, start an :class:`ImputationServer`,
and push a workload at it — then distils the run into a versioned
``BENCH_serving.json`` baseline for ``repro obs diff`` gating (the same
flow the smoke bench uses for RMSE).

Three phases, three metric families:

1. **Burst** (deterministic): requests are enqueued *before* the
   dispatcher starts, so exactly ``min(burst, max_batch_requests)``
   requests coalesce into each batch regardless of machine speed.  Gated
   metrics: ``serving.burst_batches`` (dispatches needed for the burst)
   and ``serving.burst_uncoalesced`` (requests that missed the largest
   batch) — both lower-is-better and machine-independent.
2. **Concurrent** (timed): client threads fire single-row requests plus a
   bulk CSV at the live server.  Timing metrics (muted in CI):
   ``serving.latency_p50_seconds`` / ``serving.latency_p95_seconds`` /
   ``serving.latency_p99_seconds`` and ``serving.seconds_per_1k_rows``
   (inverse throughput).  ``serving.p95_over_p50`` — the tail-latency SLO
   as a hardware-portable ratio — is *gated*: it has no ``seconds`` in its
   name, so the CI diff holds it to the default threshold instead of
   muting it with the wall-clock metrics.
3. **Correctness** (gated): every response must pass observed cells
   through bit-exactly and contain no non-finite imputations —
   ``serving.correctness_failures`` and ``serving.errors`` must stay 0.
"""

from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..core import DimConfig, DimImputer
from ..data import MinMaxNormalizer, generate, read_csv, write_csv
from ..models import GAINImputer, MeanImputer
from ..obs import recording, trace_to_dict
from ..serve import ImputationServer, ModelRegistry, ServeConfig
from .baselines import BASELINE_KIND, BASELINE_VERSION

__all__ = ["ServingBenchResult", "run_serving_bench"]


@dataclass
class ServingBenchResult:
    """Baseline dict + raw trace + workload bookkeeping."""

    baseline: Dict[str, object]
    trace: Dict[str, object]
    seconds: float
    n_requests: int
    n_rows: int
    dim_key: str
    mean_key: str


def _check_response(raw: np.ndarray, response) -> int:
    """Count correctness failures: pass-through drift or non-finite cells."""
    if not response.ok:
        return 1
    failures = 0
    raw = np.atleast_2d(raw)
    mask = ~np.isnan(raw)
    if not np.array_equal(raw[mask], response.values[mask]):
        failures += 1
    if not np.isfinite(response.values).all():
        failures += 1
    return failures


def run_serving_bench(
    n_samples: int = 240,
    epochs: int = 2,
    seed: int = 0,
    burst: int = 8,
    clients: int = 4,
    requests_per_client: int = 6,
    bulk_rows: int = 64,
    registry_root: Optional[str] = None,
) -> ServingBenchResult:
    """Run the serving bench and return the distilled baseline.

    The registry is built in a temporary directory unless ``registry_root``
    is given; the bench is self-contained and leaves no state behind in
    the default case beyond the returned dicts.
    """
    start = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-serving-bench-") as tmp:
        root = Path(registry_root) if registry_root is not None else Path(tmp)
        registry = ModelRegistry(root / "registry")

        # -- train + register: the cold-path cost paid exactly once ------
        generated = generate("trial", n_samples=n_samples, seed=seed)
        normalizer = MinMaxNormalizer()
        normalized = normalizer.fit_transform(generated.dataset)
        dim = DimImputer(
            GAINImputer(epochs=epochs, seed=seed),
            config=DimConfig(epochs=epochs),
            seed=seed,
        )
        dim.fit(normalized)
        dim_key = registry.save(
            dim, dataset=generated.dataset, normalizer=normalizer
        ).key
        mean_key = registry.save(
            MeanImputer().fit(normalized),
            dataset=generated.dataset,
            normalizer=normalizer,
        ).key

        rng = np.random.default_rng(seed)
        raw = generated.dataset.values
        pick = lambda: raw[rng.integers(0, raw.shape[0])].copy()

        correctness_failures = 0
        errors = 0
        latencies = []
        n_requests = 0
        n_rows = 0

        with recording() as rec:
            # -- phase 1: deterministic coalescing burst -----------------
            config = ServeConfig(batch_window_seconds=0.002)
            server = ImputationServer(registry, config=config)
            burst_rows = [pick() for _ in range(burst)]
            burst_futures = [server.submit(mean_key, row) for row in burst_rows]
            server.start()
            burst_responses = [f.result(timeout=60) for f in burst_futures]
            for row, response in zip(burst_rows, burst_responses):
                correctness_failures += _check_response(row, response)
                errors += 0 if response.ok else 1
            n_requests += burst
            n_rows += burst
            # A burst of B requests through batches of sizes c_i takes
            # sum over requests of 1/c_i dispatches.
            coalesced = [r.coalesced for r in burst_responses]
            burst_batches = int(round(sum(1.0 / c for c in coalesced)))
            burst_uncoalesced = burst - max(coalesced)

            # -- phase 2: concurrent load --------------------------------
            def client(worker: int) -> None:
                local_rng = np.random.default_rng(seed + 1000 + worker)
                for _ in range(requests_per_client):
                    row = raw[local_rng.integers(0, raw.shape[0])].copy()
                    t0 = time.perf_counter()
                    response = server.impute_rows(dim_key, row, timeout=120)
                    elapsed = time.perf_counter() - t0
                    with lock:
                        latencies.append(elapsed)
                        correctness_failures_list[0] += _check_response(row, response)
                        errors_list[0] += 0 if response.ok else 1

            lock = threading.Lock()
            correctness_failures_list = [0]
            errors_list = [0]
            concurrent_start = time.perf_counter()
            threads = [
                threading.Thread(target=client, args=(w,)) for w in range(clients)
            ]
            for thread in threads:
                thread.start()

            # Bulk CSV request from the main thread, concurrent with the
            # single-row clients.
            bulk_dataset = generated.dataset.take(
                list(range(min(bulk_rows, generated.dataset.n_samples))), name="bulk"
            )
            in_path, out_path = root / "bulk_in.csv", root / "bulk_out.csv"
            write_csv(bulk_dataset, in_path)
            bulk_response = server.impute_csv(dim_key, str(in_path), str(out_path))
            # Pass-through is bit-exact w.r.t. the request *as received* — the
            # CSV's 10-significant-digit floats, not the pre-write matrix.
            bulk_raw = read_csv(in_path).values
            correctness_failures += _check_response(bulk_raw, bulk_response)
            errors += 0 if bulk_response.ok else 1

            for thread in threads:
                thread.join()
            concurrent_seconds = time.perf_counter() - concurrent_start
            correctness_failures += correctness_failures_list[0]
            errors += errors_list[0]
            single_requests = clients * requests_per_client
            n_requests += single_requests + 1
            n_rows += single_requests + bulk_dataset.n_samples

            server.shutdown(drain=True)
            trace = trace_to_dict(rec)

    latency_arr = np.asarray(latencies, dtype=np.float64)
    p50 = float(np.percentile(latency_arr, 50))
    p95 = float(np.percentile(latency_arr, 95))
    metrics: Dict[str, float] = {
        "serving.burst_batches": float(burst_batches),
        "serving.burst_uncoalesced": float(burst_uncoalesced),
        "serving.correctness_failures": float(correctness_failures),
        "serving.errors": float(errors),
        "serving.latency_p50_seconds": p50,
        "serving.latency_p95_seconds": p95,
        "serving.latency_p99_seconds": float(np.percentile(latency_arr, 99)),
        # The tail-latency SLO: p95 as a multiple of the run's own p50.
        # The ratio is dimensionless (no "seconds" in the name), so unlike
        # the raw latencies it hard-gates in CI — a coalescing or
        # dispatcher regression that fattens the tail fails the diff even
        # on a machine where absolute latencies differ.
        "serving.p95_over_p50": p95 / max(p50, 1e-12),
        "serving.seconds_per_1k_rows": 1000.0 * concurrent_seconds
        / max(single_requests + bulk_dataset.n_samples, 1),
    }
    baseline = {
        "version": BASELINE_VERSION,
        "kind": BASELINE_KIND,
        "name": "serving",
        "metrics": metrics,
    }
    return ServingBenchResult(
        baseline=baseline,
        trace=trace,
        seconds=time.perf_counter() - start,
        n_requests=n_requests,
        n_rows=n_rows,
        dim_key=dim_key,
        mean_key=mean_key,
    )
