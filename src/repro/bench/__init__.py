"""Benchmark harness: experiment runner and table renderers."""

from .charts import ascii_chart, sparkline
from .runner import BenchCase, MethodResult, prepare_case, run_comparison, run_method
from .tuning import TuningResult, grid_search
from .tables import format_series, format_table, results_to_json, save_results

__all__ = [
    "BenchCase",
    "MethodResult",
    "prepare_case",
    "run_method",
    "run_comparison",
    "format_table",
    "ascii_chart",
    "sparkline",
    "format_series",
    "results_to_json",
    "save_results",
    "grid_search",
    "TuningResult",
]
