"""Benchmark harness: experiment runner and table renderers."""

from .baselines import (
    MetricDelta,
    diff_baselines,
    format_diff,
    load_baseline,
    snapshot_from_results,
    snapshot_from_trace,
    write_baseline,
)
from .charts import ascii_chart, sparkline
from .scaling import (
    CurvePoint,
    ScalingBenchResult,
    ScalingConfig,
    run_scaling_bench,
    snapshot_from_scaling,
)
from .serving import ServingBenchResult, run_serving_bench
from .runner import (
    BenchCase,
    MethodResult,
    prepare_case,
    run_comparison,
    run_method,
    run_smoke_bench,
)
from .tuning import TuningResult, grid_search
from .tables import format_series, format_table, results_to_json, save_results

__all__ = [
    "BenchCase",
    "MethodResult",
    "prepare_case",
    "run_method",
    "run_comparison",
    "run_smoke_bench",
    "ServingBenchResult",
    "run_serving_bench",
    "ScalingConfig",
    "ScalingBenchResult",
    "CurvePoint",
    "run_scaling_bench",
    "snapshot_from_scaling",
    "MetricDelta",
    "snapshot_from_results",
    "snapshot_from_trace",
    "write_baseline",
    "load_baseline",
    "diff_baselines",
    "format_diff",
    "format_table",
    "ascii_chart",
    "sparkline",
    "format_series",
    "results_to_json",
    "save_results",
    "grid_search",
    "TuningResult",
]
