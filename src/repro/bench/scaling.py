"""The paper's scaling story as a slow bench tier (`repro bench scaling`).

Three measurements, persisted together as ``BENCH_scaling.json``:

1. **Time-vs-n curves** — each method runs the size grid in ascending
   order under a wall-clock budget.  A cell that exceeds the budget is the
   paper's "—": it is recorded as timed out, and every larger size for
   that method is skipped outright (so one quadratic method cannot stall
   the bench).  A predictive skip kicks in even earlier when
   extrapolating the method's own measured growth already overshoots the
   budget by a wide margin; skipped cells are marked ``measured=False``.
2. **SSE savings** — the headline claim: at the largest measured size,
   train the same GAN imputer on the *full* table (DIM) and via SCIS
   (train on the SSE-estimated ``n*`` only), and record both wall-clocks
   and both RMSEs.  The RMSE gap shows the savings come at matched
   accuracy; ``sse.seconds_ratio`` (SCIS time over full-data time) is the
   machine-portable savings number.
3. **Sharded tier** — generate a shard store, run the out-of-core
   :func:`~repro.core.sharded.fit_impute_sharded` driver over it, and
   record its wall-clock plus ``shard.peak_resident_rows`` — the O(shard +
   reservoir) memory contract, which gates like any other non-time metric.

The snapshot reuses the ``BENCH_<name>.json`` baseline schema, so
``repro obs diff`` gates it: ``rmse.*``, ``timeout.*``,
``shard.peak_resident_rows`` etc. are machine-independent and hard-gate;
anything named ``seconds`` gets the loose time threshold (CI mutes it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core import SCIS, ScisConfig
from ..core.dim import DimConfig, DimImputer
from ..core.sharded import fit_impute_sharded
from ..data.shards import generate_sharded
from ..models import GAINImputer, KNNImputer, MeanImputer
from ..obs import get_recorder
from ..parallel import ExecutionContext
from .baselines import BASELINE_KIND, BASELINE_VERSION
from .runner import prepare_case, run_method

__all__ = [
    "ScalingConfig",
    "CurvePoint",
    "ScalingBenchResult",
    "run_scaling_bench",
    "snapshot_from_scaling",
]

# Predictive skip: when extrapolating a method's own measured growth says
# the next cell would overshoot the budget by this factor, don't run it.
_SKIP_FACTOR = 8.0
_GROWTH_EXPONENT = 2.0  # worst case among our methods (KNN's row loop)


@dataclass
class ScalingConfig:
    """Knobs for the scaling tier; defaults give a ~1 minute local run."""

    dataset: str = "trial"
    sizes: Tuple[int, ...] = (500, 2000, 8000)
    time_budget: float = 5.0  # per-cell wall-clock cutoff (the "—" line)
    epochs: int = 2
    seed: int = 0
    sse_size: Optional[int] = None  # size for the n*-vs-full run; None = max(sizes)
    sharded_rows: int = 20_000  # rows in the sharded-driver measurement
    shard_rows: int = 4096  # rows per shard in that store
    scis_initial: int = 200
    # SSE error tolerance for the n*-vs-full comparison.  The paper's
    # default (0.001) is so strict that n* ≈ n at bench scale; 0.005 keeps
    # the RMSE gap small while letting n* actually shrink the sample.
    error_bound: float = 0.005
    # Restrict the curve sweep to a subset of method names (tests / reduced
    # CI grids); None runs everything.
    method_names: Optional[Tuple[str, ...]] = None

    def methods(self) -> Dict[str, Callable[[int], object]]:
        """The curve methods: a cheap floor, a quadratic classic, the GAN."""
        dim_config = DimConfig(
            epochs=self.epochs,
            batch_size=64,
            sinkhorn_max_iter=50,
            use_adversarial=False,
        )
        all_methods: Dict[str, Callable[[int], object]] = {
            "mean": lambda s: MeanImputer(),
            "knn": lambda s: KNNImputer(),
            "dim-gain": lambda s: DimImputer(
                GAINImputer(epochs=self.epochs, seed=s), config=dim_config, seed=s
            ),
        }
        if self.method_names is None:
            return all_methods
        unknown = set(self.method_names) - set(all_methods)
        if unknown:
            raise ValueError(
                f"unknown scaling methods {sorted(unknown)}; "
                f"options: {sorted(all_methods)}"
            )
        return {name: all_methods[name] for name in self.method_names}


@dataclass
class CurvePoint:
    """One (method, n) cell of the time-vs-n grid."""

    n: int
    seconds: Optional[float]
    rmse: Optional[float]
    timed_out: bool
    measured: bool  # False when skipped by extrapolation, not run at all

    def to_json(self) -> dict:
        return {
            "n": self.n,
            "seconds": self.seconds,
            "rmse": self.rmse,
            "timed_out": self.timed_out,
            "measured": self.measured,
        }


@dataclass
class ScalingBenchResult:
    """Everything one scaling run produced."""

    curves: Dict[str, List[CurvePoint]]
    sse: Dict[str, float]
    sharded: Dict[str, float]
    config: ScalingConfig = field(default_factory=ScalingConfig)

    def format(self) -> str:
        """Plain-text report: the time-vs-n table with "—" cells."""
        sizes = list(self.config.sizes)
        header = ["method"] + [f"n={n}" for n in sizes]
        rows = [header]
        for method, points in self.curves.items():
            by_n = {p.n: p for p in points}
            cells = [method]
            for n in sizes:
                point = by_n.get(n)
                if point is None or point.timed_out:
                    cells.append("—")
                else:
                    cells.append(f"{point.seconds:.2f}s")
            rows.append(cells)
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = [
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            for row in rows
        ]
        lines.append(
            f"sse: n*={self.sse['n_star']:.0f} "
            f"({100 * self.sse['sample_rate']:.1f}% of n={self.sse['n']:.0f}), "
            f"scis {self.sse['seconds_scis']:.2f}s vs full "
            f"{self.sse['seconds_full']:.2f}s, rmse gap "
            f"{self.sse['rmse_gap']:+.4f}"
        )
        lines.append(
            f"sharded: {self.sharded['rows']:.0f} rows in "
            f"{self.sharded['seconds_total']:.2f}s, peak resident "
            f"{self.sharded['peak_resident_rows']:.0f} rows "
            f"({self.sharded['n_shards']:.0f} shards)"
        )
        return "\n".join(lines)


def _run_curves(config: ScalingConfig) -> Dict[str, List[CurvePoint]]:
    """Ascending-n sweep per method with timeout + extrapolation skips."""
    recorder = get_recorder()
    curves: Dict[str, List[CurvePoint]] = {}
    cases = {
        n: prepare_case(config.dataset, n_samples=n, seed=config.seed)
        for n in config.sizes
    }
    for method_name, factory in config.methods().items():
        points: List[CurvePoint] = []
        dead = False  # once over budget, every larger n is a "—"
        last: Optional[CurvePoint] = None
        for n in sorted(config.sizes):
            predicted = None
            if not dead and last is not None and last.seconds is not None:
                predicted = last.seconds * (n / last.n) ** _GROWTH_EXPONENT
            if dead or (
                predicted is not None
                and predicted > _SKIP_FACTOR * config.time_budget
            ):
                points.append(
                    CurvePoint(n=n, seconds=None, rmse=None, timed_out=True, measured=False)
                )
                if recorder.enabled:
                    recorder.inc("bench.scaling.skipped")
                continue
            result = run_method(
                factory,
                cases[n],
                n_seeds=1,
                time_budget=config.time_budget,
                method_name=method_name,
            )
            point = CurvePoint(
                n=n,
                seconds=float(result.seconds),
                rmse=None if result.timed_out else float(result.rmse_mean),
                timed_out=result.timed_out,
                measured=True,
            )
            points.append(point)
            last = point
            dead = dead or result.timed_out
        curves[method_name] = points
        if recorder.enabled:
            recorder.emit(
                "bench.scaling.curve",
                method=method_name,
                cells=len(points),
                timeouts=sum(p.timed_out for p in points),
            )
    return curves


def _run_sse_savings(config: ScalingConfig) -> Dict[str, float]:
    """Train-on-n* vs train-on-everything, same model family, same holdout."""
    n = config.sse_size if config.sse_size is not None else max(config.sizes)
    case = prepare_case(config.dataset, n_samples=n, seed=config.seed)
    dim_config = DimConfig(
        epochs=config.epochs, batch_size=64, sinkhorn_max_iter=50, use_adversarial=False
    )

    start = time.perf_counter()
    full = DimImputer(
        GAINImputer(epochs=config.epochs, seed=config.seed),
        config=dim_config,
        seed=config.seed,
    )
    imputed_full = full.fit_transform(case.train)
    seconds_full = time.perf_counter() - start
    rmse_full = case.holdout.rmse(imputed_full)

    scis_config = ScisConfig(
        initial_size=min(config.scis_initial, n // 4),
        error_bound=config.error_bound,
        dim=dim_config,
        seed=config.seed,
    )
    start = time.perf_counter()
    scis = SCIS(GAINImputer(epochs=config.epochs, seed=config.seed), scis_config)
    result = scis.fit_transform(case.train)
    seconds_scis = time.perf_counter() - start
    rmse_scis = case.holdout.rmse(result.imputed)

    return {
        "n": float(n),
        "n_star": float(result.n_star),
        "sample_rate": float(result.sample_rate),
        "seconds_full": seconds_full,
        "seconds_scis": seconds_scis,
        # Machine-portable savings: < 1 means SCIS beat full-data training.
        "seconds_ratio": seconds_scis / max(seconds_full, 1e-12),
        "rmse_full": rmse_full,
        "rmse_scis": rmse_scis,
        "rmse_gap": rmse_scis - rmse_full,
    }


def _run_sharded_tier(
    config: ScalingConfig, context: Optional[ExecutionContext], workdir: str
) -> Dict[str, float]:
    """Out-of-core driver measurement on a generated shard store."""
    from pathlib import Path

    store_path = Path(workdir) / "store"
    out_path = Path(workdir) / "imputed"
    start = time.perf_counter()
    store = generate_sharded(
        config.dataset,
        store_path,
        n_samples=config.sharded_rows,
        seed=config.seed,
        shard_rows=config.shard_rows,
    )
    seconds_generate = time.perf_counter() - start
    scis_config = ScisConfig(
        initial_size=config.scis_initial,
        error_bound=config.error_bound,
        dim=DimConfig(
            epochs=config.epochs,
            batch_size=64,
            sinkhorn_max_iter=50,
            use_adversarial=False,
        ),
        seed=config.seed,
    )
    report = fit_impute_sharded(
        store,
        out_path,
        GAINImputer(epochs=config.epochs, seed=config.seed),
        scis_config,
        seed=config.seed,
        context=context,
    )
    return {
        "rows": float(report.rows),
        "n_shards": float(report.n_shards),
        "n_star": float(report.n_star),
        "reservoir_rows": float(report.reservoir_rows),
        "peak_resident_rows": float(report.peak_resident_rows),
        "seconds_generate": seconds_generate,
        "seconds_train": report.training_seconds,
        "seconds_impute": report.impute_seconds,
        "seconds_total": report.total_seconds,
    }


def run_scaling_bench(
    config: Optional[ScalingConfig] = None,
    context: Optional[ExecutionContext] = None,
    workdir: Optional[str] = None,
) -> ScalingBenchResult:
    """Run all three scaling measurements; see the module docstring.

    ``workdir`` holds the sharded tier's store (a temporary directory when
    omitted); ``context`` fans the shard imputation out (``REPRO_WORKERS``).
    """
    import tempfile

    config = config if config is not None else ScalingConfig()
    if not config.sizes:
        raise ValueError("ScalingConfig.sizes must not be empty")
    curves = _run_curves(config)
    sse = _run_sse_savings(config)
    if workdir is None:
        with tempfile.TemporaryDirectory() as tmp:
            sharded = _run_sharded_tier(config, context, tmp)
    else:
        sharded = _run_sharded_tier(config, context, workdir)
    return ScalingBenchResult(curves=curves, sse=sse, sharded=sharded, config=config)


def snapshot_from_scaling(
    result: ScalingBenchResult, name: str = "scaling"
) -> Dict[str, object]:
    """Distill a scaling run into the ``BENCH_<name>.json`` baseline schema.

    ``seconds.*`` keys get the loose time threshold automatically; the
    ``timeout.*`` indicator cells, ``rmse.*``, and
    ``shard.peak_resident_rows`` are machine-independent and hard-gate.
    The full per-cell grid rides along under ``curves`` for human readers
    (the diff only looks at ``metrics``).
    """
    metrics: Dict[str, float] = {}
    for method, points in result.curves.items():
        for point in points:
            cell = f"{method}.n{point.n}"
            metrics[f"timeout.{cell}"] = 1.0 if point.timed_out else 0.0
            if point.seconds is not None:
                metrics[f"seconds.{cell}"] = point.seconds
            if point.rmse is not None:
                metrics[f"rmse.{cell}"] = point.rmse
    for key, value in result.sse.items():
        metrics[f"sse.{key}"] = float(value)
    for key, value in result.sharded.items():
        metrics[f"shard.{key}"] = float(value)
    return {
        "version": BASELINE_VERSION,
        "kind": BASELINE_KIND,
        "name": name,
        "metrics": metrics,
        "curves": {
            method: [point.to_json() for point in points]
            for method, points in result.curves.items()
        },
    }
