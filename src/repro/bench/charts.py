"""Terminal-friendly charts for the figure benchmarks.

No plotting backend is available offline, so the figure benches render their
series as unicode line/bar charts alongside the markdown tables — enough to
eyeball the crossover and trend shapes the paper's figures show.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["ascii_chart", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline (nan renders as a space)."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        return ""
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return " " * values.size
    low, high = finite.min(), finite.max()
    span = high - low
    chars = []
    for value in values:
        if not np.isfinite(value):
            chars.append(" ")
            continue
        if span == 0:
            chars.append(_SPARK_LEVELS[3])
            continue
        level = int(round((value - low) / span * (len(_SPARK_LEVELS) - 1)))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def ascii_chart(
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    height: int = 10,
    width: int = 60,
    title: str = "",
) -> str:
    """Render one or more curves on a shared-axis character grid.

    Each series gets a distinct marker; the y-axis is annotated with the data
    range and the x-axis with the first/last x values.
    """
    markers = "*o+x#@%&"
    all_points = []
    for values in series.values():
        all_points.extend(v for v in values if np.isfinite(v))
    if not all_points:
        return "(no finite data)"
    low, high = min(all_points), max(all_points)
    if high == low:
        high = low + 1.0

    grid = [[" "] * width for _ in range(height)]
    n = max(len(values) for values in series.values())
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for i, value in enumerate(values):
            if not np.isfinite(value):
                continue
            col = int(round(i / max(n - 1, 1) * (width - 1)))
            row = int(round((1.0 - (value - low) / (high - low)) * (height - 1)))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{high:10.4f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{low:10.4f} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    lines.append(
        " " * 12 + f"{x_values[0]!s:<{width // 2}}{x_values[-1]!s:>{width // 2}}"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
