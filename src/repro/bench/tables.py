"""Render benchmark results as the paper's table / figure-series layouts."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from .runner import MethodResult

__all__ = ["format_table", "format_series", "results_to_json", "save_results"]


def _cell(result: MethodResult) -> str:
    if not result.available:
        return "— | — | —"
    return (
        f"{result.rmse_mean:.3f} (±{result.rmse_std:.3f}) | "
        f"{result.seconds:,.1f} | {result.sample_rate * 100:.2f}"
    )


def format_table(results: List[MethodResult], title: str = "") -> str:
    """Markdown table in the Table III/IV layout.

    One row per method; per dataset three columns: RMSE (bias), time in
    seconds, and the training sample rate R_t (%).
    """
    datasets: List[str] = []
    methods: List[str] = []
    for result in results:
        if result.dataset not in datasets:
            datasets.append(result.dataset)
        if result.method not in methods:
            methods.append(result.method)
    index: Dict[tuple, MethodResult] = {(r.method, r.dataset): r for r in results}

    lines = []
    if title:
        lines.append(f"### {title}")
    header = "| Method | " + " | ".join(
        f"{d}: RMSE (bias) | Time (s) | R_t (%)" for d in datasets
    ) + " |"
    lines.append(header)
    lines.append("|" + "---|" * (1 + 3 * len(datasets)))
    for method in methods:
        cells = []
        for dataset in datasets:
            result = index.get((method, dataset))
            cells.append(_cell(result) if result is not None else "— | — | —")
        lines.append(f"| {method} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    title: str = "",
    float_format: str = "{:.4f}",
) -> str:
    """Markdown rendering of a figure: one row per x value, one column per curve."""
    lengths = {name: len(values) for name, values in series.items()}
    for name, length in lengths.items():
        if length != len(x_values):
            raise ValueError(
                f"series {name!r} has {length} points but x has {len(x_values)}"
            )
    lines = []
    if title:
        lines.append(f"### {title}")
    names = list(series)
    lines.append("| " + x_label + " | " + " | ".join(names) + " |")
    lines.append("|" + "---|" * (1 + len(names)))
    for i, x in enumerate(x_values):
        row = [str(x)]
        for name in names:
            value = series[name][i]
            row.append(float_format.format(value) if value == value else "—")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def results_to_json(results: List[MethodResult]) -> str:
    """Serialise results for archival (EXPERIMENTS.md provenance)."""
    payload = [
        {
            "method": r.method,
            "dataset": r.dataset,
            "rmse_mean": r.rmse_mean,
            "rmse_std": r.rmse_std,
            "seconds": r.seconds,
            "sample_rate": r.sample_rate,
            "timed_out": r.timed_out,
            "extra": r.extra,
        }
        for r in results
    ]
    return json.dumps(payload, indent=2, allow_nan=True)


def save_results(results: List[MethodResult], path: Union[str, Path]) -> None:
    """Write :func:`results_to_json` output to ``path``."""
    Path(path).write_text(results_to_json(results))
